// Bank: a money-transfer application on the public API that checks a
// global invariant — transfers move money between accounts on different
// shards, and the total balance must be conserved no matter how the
// transactions interleave, abort, and retry. This exercises Xenic's
// distributed OCC end to end (combined read+lock EXECUTE, validation,
// replicated logging, multi-hop shipped commits) and then audits the
// result.
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"xenic"
)

const (
	accounts   = 30000
	initialBal = 1000
	fnTransfer = 1
)

type bank struct{}

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

func (b *bank) Name() string { return "bank" }

func (b *bank) Spec() xenic.StoreSpec {
	return xenic.StoreSpec{HashSlots: accounts * 2, InlineValueSize: 16,
		MaxDisplacement: 16, NICCacheObjects: accounts / 2}
}

func (b *bank) Placement(nodes, replication int) xenic.Placement {
	return modPlace{nodes: nodes}
}

func bal(v []byte) int64 { return int64(binary.LittleEndian.Uint64(v)) }

func money(x int64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, uint64(x))
	return v
}

func (b *bank) Register(r *xenic.Registry) {
	r.Register(&xenic.ExecFunc{
		ID:       fnTransfer,
		HostCost: 250 * xenic.Nanosecond,
		Run: func(state []byte, reads []xenic.KV) xenic.ExecResult {
			amount := int64(binary.LittleEndian.Uint64(state))
			from, to := reads[0], reads[1]
			if bal(from.Value) < amount {
				return xenic.ExecResult{Abort: true} // insufficient funds
			}
			return xenic.ExecResult{Writes: []xenic.KV{
				{Key: from.Key, Value: money(bal(from.Value) - amount)},
				{Key: to.Key, Value: money(bal(to.Value) + amount)},
			}}
		},
	})
}

func (b *bank) Populate(shard, nodes int, emit func(uint64, []byte)) {
	for a := shard; a < accounts; a += nodes {
		emit(uint64(a), money(initialBal))
	}
}

func (b *bank) Measure(d *xenic.Txn) bool { return true }

func (b *bank) Next(node, thread int, rng *rand.Rand) *xenic.Txn {
	from := uint64(rng.Intn(accounts))
	to := uint64(rng.Intn(accounts))
	for to == from {
		to = uint64(rng.Intn(accounts))
	}
	st := make([]byte, 8)
	binary.LittleEndian.PutUint64(st, uint64(1+rng.Intn(50)))
	return &xenic.Txn{
		UpdateKeys: []uint64{from, to},
		FnID:       fnTransfer,
		State:      st,
		NICExec:    true, // single- and two-shard transfers ship to SmartNICs
	}
}

func main() {
	cfg := xenic.DefaultConfig()
	cl, err := xenic.NewCluster(cfg, &bank{})
	if err != nil {
		panic(err)
	}

	fmt.Println("transferring money across 6 shards for 25ms of simulated time...")
	cl.Start()
	cl.Run(25 * xenic.Millisecond)
	if !cl.Drain(500 * xenic.Millisecond) {
		panic("cluster did not quiesce")
	}

	var committed, aborts int64
	for i := 0; i < cl.Nodes(); i++ {
		committed += cl.Node(i).Stats().Committed
		aborts += cl.Node(i).Stats().Aborts
	}

	// Audit: sum every account on its primary shard.
	var total int64
	for a := 0; a < accounts; a++ {
		node := cl.Node(a % cl.Nodes())
		v, _, ok := node.Primary().Read(uint64(a))
		if !ok {
			panic(fmt.Sprintf("account %d missing", a))
		}
		total += bal(v)
	}
	fmt.Printf("committed transfers: %d (aborted-and-retried: %d)\n", committed, aborts)
	fmt.Printf("total balance: %d (expected %d)\n", total, int64(accounts)*initialBal)
	if total != int64(accounts)*initialBal {
		panic("MONEY NOT CONSERVED — serializability violation")
	}
	if err := cl.ReplicasConsistent(); err != nil {
		panic(err)
	}
	fmt.Println("invariant holds: money conserved, replicas consistent")
}
