// Recovery: kill a server mid-run and watch the cluster reconfigure
// (§4.2.1): the lease expires, the failed primary's first surviving backup
// is promoted, its log scan commits or aborts every in-flight transaction,
// and the shard resumes serving — with every acknowledged commit intact.
//
//	go run ./examples/recovery
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"xenic"
)

const (
	keys   = 20000
	fnIncr = 1
)

type counters struct{}

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

func (c *counters) Name() string { return "counters" }
func (c *counters) Spec() xenic.StoreSpec {
	return xenic.StoreSpec{HashSlots: keys * 2, InlineValueSize: 16,
		MaxDisplacement: 16, NICCacheObjects: keys}
}
func (c *counters) Placement(nodes, replication int) xenic.Placement {
	return modPlace{nodes: nodes}
}
func (c *counters) Register(r *xenic.Registry) {
	r.Register(&xenic.ExecFunc{
		ID: fnIncr, HostCost: 200 * xenic.Nanosecond,
		Run: func(state []byte, reads []xenic.KV) xenic.ExecResult {
			old := uint64(0)
			if len(reads[0].Value) >= 8 {
				old = binary.LittleEndian.Uint64(reads[0].Value)
			}
			nv := make([]byte, 8)
			binary.LittleEndian.PutUint64(nv, old+1)
			return xenic.ExecResult{Writes: []xenic.KV{{Key: reads[0].Key, Value: nv}}}
		},
	})
}
func (c *counters) Populate(shard, nodes int, emit func(uint64, []byte)) {
	zero := make([]byte, 8)
	for k := shard; k < keys; k += nodes {
		emit(uint64(k), zero)
	}
}
func (c *counters) Measure(d *xenic.Txn) bool { return true }
func (c *counters) Next(node, thread int, rng *rand.Rand) *xenic.Txn {
	return &xenic.Txn{
		UpdateKeys: []uint64{uint64(rng.Intn(keys))},
		FnID:       fnIncr,
		NICExec:    true,
	}
}

func main() {
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 6
	cl, err := xenic.NewCluster(cfg, &counters{})
	if err != nil {
		panic(err)
	}

	victim := 2
	fmt.Println("running increments on 6 servers...")
	cl.Start()
	cl.Run(5 * xenic.Millisecond)
	fmt.Printf("t=5ms: killing node %d (primary of shard %d)\n", victim, victim)
	cl.Kill(victim)
	cl.Run(30 * xenic.Millisecond)

	v := cl.View()
	fmt.Printf("t=35ms: view epoch %d — shard %d is now served by node %d (backups: %v)\n",
		v.Epoch, victim, v.PrimaryOf[victim], v.BackupsOf[victim])

	if !cl.Drain(800 * xenic.Millisecond) {
		panic("cluster did not quiesce after recovery")
	}

	// Audit: the counter total must equal (or, for transactions caught at
	// their commit point by the crash, slightly exceed) the committed
	// count — no acknowledged increment may be lost.
	var counted uint64
	for i := 0; i < cl.Nodes(); i++ {
		counted += uint64(cl.Node(i).Stats().UpdateKeysCommitted)
	}
	var sum uint64
	for k := 0; k < keys; k++ {
		shard := k % cl.Nodes()
		pn := cl.Node(v.PrimaryOf[shard])
		data, ok := pn.PrimaryOf(shard)
		if !ok {
			panic("shard unserved")
		}
		val, _, found := data.Read(uint64(k))
		if !found {
			panic("key lost")
		}
		sum += binary.LittleEndian.Uint64(val)
	}
	fmt.Printf("committed increments (all nodes incl. dead): %d\n", counted)
	fmt.Printf("counter total on surviving primaries:        %d\n", sum)
	if sum < counted {
		panic("ACKNOWLEDGED COMMITS LOST")
	}
	if err := cl.ReplicasConsistent(); err != nil {
		panic(err)
	}
	fmt.Println("recovery held: no acknowledged commit lost, replicas consistent")
}
