// Quickstart: define a tiny workload against the public API, run it on a
// simulated 6-server Xenic cluster, and print throughput and latency.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"xenic"
)

// greetWorkload is a minimal key-value workload: 80% of transactions read
// one profile, 20% bump a profile's visit counter via a registered
// execution function that can run on the SmartNIC.
type greetWorkload struct{ keys int }

const fnVisit = 1

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

func (g *greetWorkload) Name() string { return "quickstart" }

func (g *greetWorkload) Spec() xenic.StoreSpec {
	return xenic.StoreSpec{HashSlots: g.keys * 2, InlineValueSize: 32, MaxDisplacement: 16,
		NICCacheObjects: g.keys / 2}
}

func (g *greetWorkload) Placement(nodes, replication int) xenic.Placement {
	return modPlace{nodes: nodes}
}

func (g *greetWorkload) Register(r *xenic.Registry) {
	r.Register(&xenic.ExecFunc{
		ID:       fnVisit,
		HostCost: 200 * xenic.Nanosecond,
		Run: func(state []byte, reads []xenic.KV) xenic.ExecResult {
			visits := uint64(0)
			if len(reads[0].Value) >= 8 {
				visits = binary.LittleEndian.Uint64(reads[0].Value)
			}
			nv := make([]byte, 8)
			binary.LittleEndian.PutUint64(nv, visits+1)
			return xenic.ExecResult{Writes: []xenic.KV{{Key: reads[0].Key, Value: nv}}}
		},
	})
}

func (g *greetWorkload) Populate(shard, nodes int, emit func(uint64, []byte)) {
	zero := make([]byte, 8)
	for k := shard; k < g.keys; k += nodes {
		emit(uint64(k), zero)
	}
}

func (g *greetWorkload) Measure(d *xenic.Txn) bool { return true }

func (g *greetWorkload) Next(node, thread int, rng *rand.Rand) *xenic.Txn {
	k := uint64(rng.Intn(g.keys))
	if rng.Float64() < 0.8 {
		return &xenic.Txn{ReadKeys: []uint64{k}}
	}
	return &xenic.Txn{
		UpdateKeys: []uint64{k},
		FnID:       fnVisit,
		NICExec:    true, // ship execution to the SmartNIC
	}
}

func main() {
	cfg := xenic.DefaultConfig() // 6 servers, 3-way replication, 100GbE
	cl, err := xenic.NewCluster(cfg, &greetWorkload{keys: 60000})
	if err != nil {
		panic(err)
	}

	fmt.Println("running 20ms of simulated time on the 6-server testbed...")
	res := cl.Measure(5*xenic.Millisecond, 20*xenic.Millisecond)
	fmt.Printf("throughput: %.0f txn/s per server\n", res.PerServerTput)
	fmt.Printf("median latency: %.1fus   p99: %.1fus\n", res.Median.Micros(), res.P99.Micros())
	fmt.Printf("committed: %d   aborted-and-retried: %d\n", res.Committed, res.Aborts)
}
