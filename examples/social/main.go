// Social: run the paper's Retwis workload (a Twitter-like application) on
// Xenic and on two of the RDMA baselines it is compared against, printing a
// small head-to-head table — a miniature of Figure 8c.
//
//	go run ./examples/social
package main

import (
	"fmt"

	"xenic"
)

func main() {
	warm, window := 3*xenic.Millisecond, 10*xenic.Millisecond
	fmt.Println("Retwis, 6 servers, 3-way replication, 100GbE (simulated)")
	fmt.Printf("%-10s %14s %12s %10s\n", "system", "txn/s/server", "median", "p99")

	{
		g := xenic.Retwis()
		g.KeysPerServer = 100_000 // scaled for example runtime
		cfg := xenic.DefaultConfig()
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 3, 16
		cfg.Outstanding = 48
		cl, err := xenic.NewCluster(cfg, g)
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, window)
		fmt.Printf("%-10s %14.0f %10.1fus %8.1fus\n", "Xenic",
			res.PerServerTput, res.Median.Micros(), res.P99.Micros())
	}

	for _, sys := range []xenic.Baseline{xenic.DrTMH, xenic.FaSST} {
		g := xenic.Retwis()
		g.KeysPerServer = 100_000
		cfg := xenic.DefaultBaselineConfig(sys)
		cfg.Threads = 16
		cfg.Outstanding = 6
		cl, err := xenic.NewBaseline(cfg, g)
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, window)
		fmt.Printf("%-10s %14.0f %10.1fus %8.1fus\n", sys,
			res.PerServerTput, res.Median.Micros(), res.P99.Micros())
	}
	fmt.Println("\npaper (fig 8c): Xenic 2.07x DrTM+H peak throughput, 42% lower median latency")
}
