package xenic_test

import (
	"testing"

	"xenic"
)

// systems constructs one of each cluster type behind the System interface,
// with identical workload and scale.
func systems(t *testing.T, opts ...xenic.Option) map[string]xenic.System {
	t.Helper()
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 1, 4
	xc, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := xenic.DefaultBaselineConfig(xenic.DrTMH)
	bcfg.Nodes = 4
	bcfg.Threads = 4
	bc, err := xenic.NewBaseline(bcfg, &tinyWorkload{keys: 4000}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]xenic.System{"xenic": xc, "DrTM+H": bc}
}

// TestSystemConformance drives both cluster types through the full System
// lifecycle using only the interface.
func TestSystemConformance(t *testing.T) {
	for name, s := range systems(t) {
		s.Start()
		s.Run(1 * xenic.Millisecond)
		res := s.Measure(1*xenic.Millisecond, 2*xenic.Millisecond)
		if res.PerServerTput <= 0 || res.Committed == 0 || res.Median <= 0 {
			t.Errorf("%s: empty measurement: %+v", name, res)
		}
		if !s.Drain(100 * xenic.Millisecond) {
			t.Errorf("%s: did not drain", name)
		}
		if !s.Quiesced() {
			t.Errorf("%s: not quiesced after drain", name)
		}
	}
}

// TestOptionsAttachObservers verifies WithTracer and WithStats wire the
// observers into both cluster types at construction.
func TestOptionsAttachObservers(t *testing.T) {
	for _, name := range []string{"xenic", "DrTM+H"} {
		tr := xenic.NewTracer()
		reg := xenic.NewStatsRegistry()
		s := systems(t, xenic.WithTracer(tr), xenic.WithStats(reg))[name]
		s.Measure(500*xenic.Microsecond, 1*xenic.Millisecond)
		// The baseline's fault-free data path records only process/thread
		// metadata; the Xenic cluster records per-phase spans too.
		if tr.Len()+tr.MetaLen() == 0 {
			t.Errorf("%s: tracer attached via WithTracer recorded nothing", name)
		}
		if len(reg.Names()) == 0 {
			t.Errorf("%s: registry attached via WithStats registered nothing", name)
		}
	}
}

// TestOptionsFaults verifies WithFaults installs (and explicitly clears) a
// fault plan.
func TestOptionsFaults(t *testing.T) {
	plan, err := xenic.ParseFaultPlan("drop=0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 1, 4
	cl, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000}, xenic.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(2 * xenic.Millisecond)
	inj := cl.Injector()
	if inj == nil {
		t.Fatal("WithFaults did not install an injector")
	}
	if inj.Drops == 0 {
		t.Error("drop plan injected no drops")
	}

	// WithFaults(nil) clears a plan already present in the config.
	cfg.Faults = plan
	cl2, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000}, xenic.WithFaults(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cl2.Injector() != nil {
		t.Error("WithFaults(nil) did not clear the configured plan")
	}
}
