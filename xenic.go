// Package xenic is the public API of this Xenic reproduction: a simulated
// SmartNIC-accelerated distributed transaction system (SOSP 2021).
//
// A Cluster is a simulated testbed of N servers, each with an on-path
// SmartNIC, running Xenic's co-designed data store and multi-hop OCC commit
// protocol over a calibrated network/PCIe model. Applications define
// workloads (key placement, execution functions, transaction mix) through
// the Workload interface and drive them in simulated time:
//
//	cl, _ := xenic.NewCluster(xenic.DefaultConfig(), myWorkload)
//	res := cl.Measure(5*xenic.Millisecond, 20*xenic.Millisecond)
//	fmt.Println(res.PerServerTput, res.Median)
//
// The same workloads run unchanged on the RDMA/RPC baseline systems the
// paper compares against (DrTM+H, DrTM+H NC, FaSST, DrTM+R) via
// NewBaseline, and the harness in cmd/xenic-bench regenerates every table
// and figure of the paper's evaluation.
package xenic

import (
	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/metrics"
	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/trace"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

// Time is simulated time (picosecond resolution).
type Time = sim.Time

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// KV is a versioned key-value pair.
type KV = wire.KV

// Txn describes one transaction: read-only keys, read-modify-write keys,
// blind writes, and the registered execution function that computes write
// values from read values.
type Txn = txnmodel.TxnDesc

// ExecFunc is a registered execution function; it may run on a host
// thread, the coordinator SmartNIC, or a remote primary SmartNIC
// (function shipping).
type ExecFunc = txnmodel.ExecFunc

// ExecResult is an execution function's output.
type ExecResult = txnmodel.ExecResult

// Registry holds a workload's execution functions.
type Registry = txnmodel.Registry

// Placement maps keys to shards and storage kinds.
type Placement = txnmodel.Placement

// StoreSpec sizes each node's store.
type StoreSpec = txnmodel.StoreSpec

// Workload supplies transactions to a cluster. See internal/workload for
// the TPC-C, Retwis, and Smallbank implementations.
type Workload = txnmodel.Generator

// Config assembles a Xenic cluster.
type Config = core.Config

// Features toggles Xenic's design features (§5.7 ablations).
type Features = core.Features

// Result summarizes a measurement window.
type Result = core.Result

// Cluster is a simulated Xenic deployment.
type Cluster = core.Cluster

// DefaultConfig mirrors the paper's testbed: 6 servers, 3-way replication,
// 100Gbps fabric, calibrated LiquidIO 3 SmartNICs.
func DefaultConfig() Config { return core.DefaultConfig() }

// AllFeatures enables the full Xenic design.
func AllFeatures() Features { return core.AllFeatures() }

// DefaultParams returns the calibrated device model (§3).
func DefaultParams() model.Params { return model.Default() }

// NewCluster builds and populates a Xenic cluster running w.
func NewCluster(cfg Config, w Workload) (*Cluster, error) { return core.New(cfg, w) }

// Baseline selects one of the comparison systems (§5.1).
type Baseline = baseline.System

// Baseline systems.
const (
	DrTMH   = baseline.DrTMH
	DrTMHNC = baseline.DrTMHNC
	FaSST   = baseline.FaSST
	DrTMR   = baseline.DrTMR
)

// BaselineConfig assembles a baseline cluster.
type BaselineConfig = baseline.Config

// BaselineCluster is a simulated baseline deployment.
type BaselineCluster = baseline.Cluster

// DefaultBaselineConfig mirrors the testbed for the given system.
func DefaultBaselineConfig(sys Baseline) BaselineConfig { return baseline.DefaultConfig(sys) }

// NewBaseline builds a baseline cluster running w.
func NewBaseline(cfg BaselineConfig, w Workload) (*BaselineCluster, error) {
	return baseline.New(cfg, w)
}

// TPCC returns the full TPC-C workload (§5.3).
func TPCC() *tpcc.Gen { return tpcc.New() }

// TPCCNewOrder returns the §5.2 new-order-only TPC-C variant.
func TPCCNewOrder() *tpcc.Gen { return tpcc.NewOrderVariant() }

// Retwis returns the Retwis workload (§5.4).
func Retwis() *retwis.Gen { return retwis.New() }

// Smallbank returns the Smallbank workload (§5.5).
func Smallbank() *smallbank.Gen { return smallbank.New() }

// NewRegistry returns an empty execution-function registry.
func NewRegistry() *Registry { return txnmodel.NewRegistry() }

// Tracer records per-transaction distributed traces — phase transitions,
// message hops, DMA flushes, lock transitions, aborts — as Chrome
// trace-event JSON (Perfetto-loadable) with simulated timestamps. A nil
// *Tracer is a valid disabled tracer.
type Tracer = trace.Tracer

// NewTracer returns an enabled tracer; attach it with Cluster.SetTracer
// before Start/Measure.
func NewTracer() *Tracer { return trace.New() }

// StatsRegistry collects named counters, gauges, and histograms from
// cluster components, snapshotable as one JSON document per run. A nil
// *StatsRegistry is a valid disabled registry.
type StatsRegistry = metrics.Registry

// NewStatsRegistry returns an empty stats registry; populate it with
// Cluster.RegisterMetrics or BaselineCluster.RegisterMetrics.
func NewStatsRegistry() *StatsRegistry { return metrics.NewRegistry() }

// FaultPlan is a deterministic fault-injection schedule: frame
// drop/duplication/delay probabilities, network partitions, node crashes,
// NIC core and DMA engine stalls, and the timeout knobs consumers use to
// survive them. Attach one via Config.Faults or BaselineConfig.Faults;
// the same seed and plan reproduce the exact same run.
type FaultPlan = fault.Plan

// ParseFaultPlan parses the -faults specification grammar, e.g.
// "drop=0.01,dup=0.005,crash=2@4ms,part=1:2@2ms+1ms".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// RandomFaultPlan generates a seeded random fault plan for an n-node
// cluster, as used by the harness chaos mode.
func RandomFaultPlan(seed int64, nodes int) *FaultPlan { return fault.RandomPlan(seed, nodes) }
