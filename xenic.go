// Package xenic is the public API of this Xenic reproduction: a simulated
// SmartNIC-accelerated distributed transaction system (SOSP 2021).
//
// A Cluster is a simulated testbed of N servers, each with an on-path
// SmartNIC, running Xenic's co-designed data store and multi-hop OCC commit
// protocol over a calibrated network/PCIe model. Applications define
// workloads (key placement, execution functions, transaction mix) through
// the Workload interface and drive them in simulated time:
//
//	cl, _ := xenic.NewCluster(xenic.DefaultConfig(), myWorkload)
//	res := cl.Measure(5*xenic.Millisecond, 20*xenic.Millisecond)
//	fmt.Println(res.PerServerTput, res.Median)
//
// The same workloads run unchanged on the RDMA/RPC baseline systems the
// paper compares against (DrTM+H, DrTM+H NC, FaSST, DrTM+R) via
// NewBaseline, and the harness in cmd/xenic-bench regenerates every table
// and figure of the paper's evaluation.
package xenic

import (
	"xenic/internal/baseline"
	"xenic/internal/check"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/load"
	"xenic/internal/metrics"
	"xenic/internal/openloop"
	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/telemetry"
	"xenic/internal/trace"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

// Time is simulated time (picosecond resolution).
type Time = sim.Time

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// KV is a versioned key-value pair.
type KV = wire.KV

// Txn describes one transaction: read-only keys, read-modify-write keys,
// blind writes, and the registered execution function that computes write
// values from read values.
type Txn = txnmodel.TxnDesc

// ExecFunc is a registered execution function; it may run on a host
// thread, the coordinator SmartNIC, or a remote primary SmartNIC
// (function shipping).
type ExecFunc = txnmodel.ExecFunc

// ExecResult is an execution function's output.
type ExecResult = txnmodel.ExecResult

// Registry holds a workload's execution functions.
type Registry = txnmodel.Registry

// Placement maps keys to shards and storage kinds.
type Placement = txnmodel.Placement

// StoreSpec sizes each node's store.
type StoreSpec = txnmodel.StoreSpec

// Workload supplies transactions to a cluster. See internal/workload for
// the TPC-C, Retwis, and Smallbank implementations.
type Workload = txnmodel.Generator

// Config assembles a Xenic cluster.
type Config = core.Config

// Features toggles Xenic's design features (§5.7 ablations).
type Features = core.Features

// Result summarizes a measurement window.
type Result = core.Result

// Cluster is a simulated Xenic deployment.
type Cluster = core.Cluster

// LoadSource decides when transactions enter a system and which session
// issues them. The built-in closed loop is one implementation (the default
// when no source is attached); the open-loop front-end (WithOpenLoop,
// internal/openloop) is another. Attach one at construction with WithLoad.
type LoadSource = load.Source

// LoadStats is a snapshot of a LoadSource's admission and session counters
// (System.OfferedLoad). All-zero under the built-in closed loop.
type LoadStats = load.Stats

// OpenLoopConfig parameterizes the open-loop traffic front-end: offered
// rate, arrival process, session pool, tenancy, churn, and admission policy.
type OpenLoopConfig = openloop.Config

// ArrivalProcess draws interarrival gaps for the open-loop front-end
// (OpenLoopConfig.Arrival). Nil means Poisson.
type ArrivalProcess = openloop.Arrival

// PoissonArrivals returns the memoryless arrival process (the default).
func PoissonArrivals() ArrivalProcess { return openloop.Poisson{} }

// ParetoArrivals returns the heavy-tailed bounded-Pareto arrival process
// with the default tail shape.
func ParetoArrivals() ArrivalProcess { return openloop.BoundedPareto{} }

// LoadAdmission is a pluggable admission-control policy for the open-loop
// front-end (OpenLoopConfig.Admit). Nil admits everything.
type LoadAdmission = openloop.Admission

// NewOpenLoopTokenBucket returns a token-bucket admission policy: arrivals
// beyond rate txns/sec (with a burst allowance) are rejected outright.
func NewOpenLoopTokenBucket(rate, burst float64) LoadAdmission {
	return openloop.NewTokenBucket(rate, burst)
}

// NewOpenLoopQueueDepth returns a queue-depth admission policy: at most
// maxInFlight admitted-but-unfinished transactions, excess arrivals queue
// up to maxQueue and are rejected beyond that.
func NewOpenLoopQueueDepth(maxInFlight, maxQueue int) LoadAdmission {
	return openloop.NewQueueDepth(maxInFlight, maxQueue)
}

// System is the common surface of every simulated transaction system: the
// Xenic cluster and each RDMA/RPC baseline implement it, so measurement code
// (the harness curve runners, examples, user benchmarks) is written once
// against System and runs unchanged over any of them.
//
// The lifecycle is: construct (NewCluster/NewBaseline, attaching observers
// and optionally a LoadSource via Options), Start load, Measure one or more
// windows, then Drain. Run advances simulated time directly for callers that
// manage their own windows; StopLoad halts generation without waiting for
// quiescence.
type System interface {
	// Start begins load generation: the LoadSource attached via WithLoad,
	// or, when none is attached, the built-in closed loop on every
	// application thread.
	Start()
	// StopLoad stops generating new transactions; in-flight ones drain.
	StopLoad()
	// Run advances simulated time by d.
	Run(d Time)
	// Measure runs warmup, resets statistics, runs the measurement window,
	// and aggregates cluster-wide results. If load is not yet running it
	// starts whatever generator is attached — it never falls back to the
	// closed loop when a LoadSource is attached.
	Measure(warmup, window Time) Result
	// Drain stops load and runs until quiesced (or the deadline elapses),
	// reporting success.
	Drain(deadline Time) bool
	// Quiesced reports whether the system has fully drained.
	Quiesced() bool
	// SetLoad attaches a load source, replacing the built-in closed loop as
	// what Start/StopLoad control. Call before any load has started. Prefer
	// WithLoad at construction.
	SetLoad(src LoadSource) error
	// OfferedLoad snapshots the attached LoadSource's counters (offered,
	// admitted, rejected, completed, sessions, queue delay). All-zero under
	// the built-in closed loop.
	OfferedLoad() LoadStats
	// SetTracer attaches a tracer (nil disables tracing). Call before Start.
	// Prefer WithTracer at construction.
	SetTracer(tr *Tracer)
	// RegisterMetrics registers the system's counters under reg. Prefer
	// WithStats at construction.
	RegisterMetrics(reg *StatsRegistry)
	// SetHistory attaches a transaction-history recorder (nil disables
	// recording). Call before Start. Prefer WithHistory at construction.
	SetHistory(h *History)
	// SetTelemetry registers time-series probes on the sampler and starts
	// its sampling ticker (nil disables telemetry). Call before Start.
	// Prefer WithTelemetry at construction.
	SetTelemetry(s *Telemetry)
	// AuditHistory cross-checks the drained system's final state against the
	// recorded history (orphan locks, store-vs-commit versions, log
	// consistency). Call after a successful Drain; nil without a recorder.
	AuditHistory() error
}

// Both cluster types satisfy System.
var (
	_ System = (*Cluster)(nil)
	_ System = (*BaselineCluster)(nil)
)

// Option configures observability and fault injection at construction time,
// uniformly for NewCluster and NewBaseline. Options subsume the older
// attach-point trio — Config.Faults, SetTracer, RegisterMetrics — which
// remain supported but are better expressed in one place:
//
//	cl, err := xenic.NewCluster(cfg, w,
//	    xenic.WithTracer(tr), xenic.WithStats(reg), xenic.WithFaults(plan))
type Option func(*options)

type options struct {
	tracer    *Tracer
	stats     *StatsRegistry
	hist      *History
	tel       *Telemetry
	faults    *FaultPlan
	setFaults bool
	loadSrc   LoadSource
}

// WithTracer attaches tr before any traffic flows (equivalent to calling
// SetTracer immediately after construction).
func WithTracer(tr *Tracer) Option { return func(o *options) { o.tracer = tr } }

// WithStats registers the system's metrics under reg (equivalent to calling
// RegisterMetrics immediately after construction).
func WithStats(reg *StatsRegistry) Option { return func(o *options) { o.stats = reg } }

// WithHistory attaches a transaction-history recorder (equivalent to calling
// SetHistory immediately after construction). After Drain, check the history
// for serializability with h.Check() and cross-check final state with
// AuditHistory. Recording never perturbs the simulation: a run with a
// recorder attached is byte-identical to one without.
func WithHistory(h *History) Option { return func(o *options) { o.hist = h } }

// WithTelemetry attaches a telemetry sampler (equivalent to calling
// SetTelemetry immediately after construction): the system's counters are
// sampled on the sampler's simulated-time cadence into per-node time
// series. Sampling never perturbs the simulation — a run with telemetry
// attached executes the same transaction schedule as one without.
func WithTelemetry(s *Telemetry) Option { return func(o *options) { o.tel = s } }

// WithFaults installs the fault-injection plan (equivalent to setting
// Config.Faults / BaselineConfig.Faults before construction). Passing nil
// explicitly clears any plan already present in the config.
func WithFaults(p *FaultPlan) Option {
	return func(o *options) { o.faults = p; o.setFaults = true }
}

// WithLoad attaches a LoadSource at construction: Start/StopLoad then
// control the source instead of the built-in closed loop. Source attach
// errors (e.g. a misconfigured offered rate) surface from
// NewCluster/NewBaseline.
func WithLoad(src LoadSource) Option { return func(o *options) { o.loadSrc = src } }

// WithOpenLoop attaches the open-loop traffic front-end with the given
// configuration — shorthand for WithLoad(NewOpenLoop(cfg)).
func WithOpenLoop(cfg OpenLoopConfig) Option {
	return func(o *options) { o.loadSrc = openloop.New(cfg) }
}

// NewOpenLoop returns an open-loop LoadSource for cfg (attach it with
// WithLoad, or pass cfg directly to WithOpenLoop). Configuration errors
// surface when the source is attached to a system.
func NewOpenLoop(cfg OpenLoopConfig) LoadSource { return openloop.New(cfg) }

func gather(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// apply wires the gathered load source and observers into a constructed
// system. The source attaches first so observers registered afterwards
// (telemetry in particular) see it and expose its series.
func (o options) apply(s System) error {
	if o.loadSrc != nil {
		if err := s.SetLoad(o.loadSrc); err != nil {
			return err
		}
	}
	if o.tracer != nil {
		s.SetTracer(o.tracer)
	}
	if o.stats != nil {
		s.RegisterMetrics(o.stats)
	}
	if o.hist != nil {
		s.SetHistory(o.hist)
	}
	if o.tel != nil {
		s.SetTelemetry(o.tel)
	}
	return nil
}

// DefaultConfig mirrors the paper's testbed: 6 servers, 3-way replication,
// 100Gbps fabric, calibrated LiquidIO 3 SmartNICs.
func DefaultConfig() Config { return core.DefaultConfig() }

// AllFeatures enables the full Xenic design.
func AllFeatures() Features { return core.AllFeatures() }

// DefaultParams returns the calibrated device model (§3).
func DefaultParams() model.Params { return model.Default() }

// NewCluster builds and populates a Xenic cluster running w, then applies
// any options (tracer, stats registry, fault plan).
func NewCluster(cfg Config, w Workload, opts ...Option) (*Cluster, error) {
	o := gather(opts)
	if o.setFaults {
		cfg.Faults = o.faults
	}
	cl, err := core.New(cfg, w)
	if err != nil {
		return nil, err
	}
	if err := o.apply(cl); err != nil {
		return nil, err
	}
	return cl, nil
}

// Baseline selects one of the comparison systems (§5.1).
type Baseline = baseline.System

// Baseline systems.
const (
	DrTMH   = baseline.DrTMH
	DrTMHNC = baseline.DrTMHNC
	FaSST   = baseline.FaSST
	DrTMR   = baseline.DrTMR
)

// BaselineConfig assembles a baseline cluster.
type BaselineConfig = baseline.Config

// BaselineCluster is a simulated baseline deployment.
type BaselineCluster = baseline.Cluster

// DefaultBaselineConfig mirrors the testbed for the given system.
func DefaultBaselineConfig(sys Baseline) BaselineConfig { return baseline.DefaultConfig(sys) }

// NewBaseline builds a baseline cluster running w, then applies any options
// (tracer, stats registry, fault plan).
func NewBaseline(cfg BaselineConfig, w Workload, opts ...Option) (*BaselineCluster, error) {
	o := gather(opts)
	if o.setFaults {
		cfg.Faults = o.faults
	}
	cl, err := baseline.New(cfg, w)
	if err != nil {
		return nil, err
	}
	if err := o.apply(cl); err != nil {
		return nil, err
	}
	return cl, nil
}

// TPCC returns the full TPC-C workload (§5.3).
func TPCC() *tpcc.Gen { return tpcc.New() }

// TPCCNewOrder returns the §5.2 new-order-only TPC-C variant.
func TPCCNewOrder() *tpcc.Gen { return tpcc.NewOrderVariant() }

// Retwis returns the Retwis workload (§5.4).
func Retwis() *retwis.Gen { return retwis.New() }

// Smallbank returns the Smallbank workload (§5.5).
func Smallbank() *smallbank.Gen { return smallbank.New() }

// NewRegistry returns an empty execution-function registry.
func NewRegistry() *Registry { return txnmodel.NewRegistry() }

// Tracer records per-transaction distributed traces — phase transitions,
// message hops, DMA flushes, lock transitions, aborts — as Chrome
// trace-event JSON (Perfetto-loadable) with simulated timestamps. A nil
// *Tracer is a valid disabled tracer.
type Tracer = trace.Tracer

// NewTracer returns an enabled tracer; attach it with Cluster.SetTracer
// before Start/Measure.
func NewTracer() *Tracer { return trace.New() }

// StatsRegistry collects named counters, gauges, and histograms from
// cluster components, snapshotable as one JSON document per run. A nil
// *StatsRegistry is a valid disabled registry.
type StatsRegistry = metrics.Registry

// NewStatsRegistry returns an empty stats registry; populate it with
// Cluster.RegisterMetrics or BaselineCluster.RegisterMetrics.
func NewStatsRegistry() *StatsRegistry { return metrics.NewRegistry() }

// History records every transaction outcome — read sets with observed
// versions, write sets with installed versions, statuses, timestamps — for
// offline serializability checking (DESIGN.md §9). Attach one with
// WithHistory, run, Drain, then call Check. A nil *History is a valid
// disabled recorder.
type History = check.History

// NewHistory returns an empty transaction-history recorder.
func NewHistory() *History { return check.NewHistory() }

// Telemetry is a simulated-time sampler collecting per-node, per-resource
// time series (rates, windowed latency quantiles, occupancies, queue
// depths) from a running system. Attach one with WithTelemetry, run, then
// export with Set (see the telemetry package for CSV/JSON/HTML writers and
// the bottleneck analyzer). A nil *Telemetry is a valid disabled sampler.
type Telemetry = telemetry.Sampler

// TelemetrySet is an exported snapshot of a sampler's series.
type TelemetrySet = telemetry.Set

// NewTelemetry returns a sampler ticking every interval of simulated time
// (the package default, 100µs, if interval <= 0).
func NewTelemetry(interval Time) *Telemetry { return telemetry.New(interval) }

// CheckReport is the outcome of a serializability check: the dependency
// graph summary and any witness cycles found.
type CheckReport = check.Report

// FaultPlan is a deterministic fault-injection schedule: frame
// drop/duplication/delay probabilities, network partitions, node crashes,
// NIC core and DMA engine stalls, and the timeout knobs consumers use to
// survive them. Attach one via Config.Faults or BaselineConfig.Faults;
// the same seed and plan reproduce the exact same run.
type FaultPlan = fault.Plan

// ParseFaultPlan parses the -faults specification grammar, e.g.
// "drop=0.01,dup=0.005,crash=2@4ms,part=1:2@2ms+1ms".
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.Parse(spec) }

// RandomFaultPlan generates a seeded random fault plan for an n-node
// cluster, as used by the harness chaos mode.
func RandomFaultPlan(seed int64, nodes int) *FaultPlan { return fault.RandomPlan(seed, nodes) }
