package xenic_test

import (
	"testing"

	"xenic"
)

// TestClosedLoopGolden pins the closed-loop schedule to fingerprints
// captured before the LoadSource front-end existed. The open-loop redesign
// is required to leave closed-loop runs byte-identical: every injection-path
// check is a nil/len test that draws no randomness and schedules no events,
// so a run without an attached LoadSource must reproduce these counters
// exactly. Any drift here means the redesign perturbed the closed loop.
//
// The xenic fingerprint was re-captured once after the host-local read-only
// validation gained the §4.2 step-4 lock check (a serializability fix: the
// old version-only check could commit a read taken under a writer's lock
// window). The conflict scheduler is NOT part of that delta — scheduler-off
// runs take the legacy dispatch path untouched, which these values pin.
func TestClosedLoopGolden(t *testing.T) {
	type golden struct {
		committed, measured, aborts int64
		median, p99                 xenic.Time
	}
	check := func(t *testing.T, res xenic.Result, want golden) {
		t.Helper()
		got := golden{res.Committed, res.Measured, res.Aborts, res.Median, res.P99}
		if got != want {
			t.Errorf("closed-loop fingerprint drifted:\n got %+v\nwant %+v", got, want)
		}
	}
	gen := func() xenic.Workload {
		g := xenic.Smallbank()
		g.AccountsPerServer = 4000
		return g
	}

	t.Run("xenic", func(t *testing.T) {
		cfg := xenic.DefaultConfig()
		cfg.Nodes = 4
		cfg.AppThreads = 2
		cfg.WorkerThreads = 2
		cfg.NICCores = 4
		cfg.Outstanding = 4
		cfg.Seed = 42
		cl, err := xenic.NewCluster(cfg, gen())
		if err != nil {
			t.Fatal(err)
		}
		res := cl.Measure(1*xenic.Millisecond, 4*xenic.Millisecond)
		check(t, res, golden{
			committed: 10695, measured: 10695, aborts: 526,
			median: 11094061, p99: 26386273,
		})
	})

	t.Run("fasst", func(t *testing.T) {
		cfg := xenic.DefaultBaselineConfig(xenic.FaSST)
		cfg.Nodes = 4
		cfg.Threads = 4
		cfg.Outstanding = 4
		cfg.Seed = 42
		cl, err := xenic.NewBaseline(cfg, gen())
		if err != nil {
			t.Fatal(err)
		}
		res := cl.Measure(1*xenic.Millisecond, 4*xenic.Millisecond)
		check(t, res, golden{
			committed: 8662, measured: 8662, aborts: 1621,
			median: 26386273, p99: 81386393,
		})
	})
}
