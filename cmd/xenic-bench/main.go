// xenic-bench regenerates the paper's tables and figures on the simulated
// testbed.
//
//	xenic-bench -list            # show available experiments
//	xenic-bench table2 fig8c     # run specific experiments
//	xenic-bench -quick all       # fast, reduced-scale pass over everything
//
// With -telemetry PREFIX every experiment cell records time-resolved series
// (throughput, latency quantiles, occupancies, queue depths) and the run
// writes PREFIX-<id>.csv / PREFIX-<id>.json per experiment plus one
// PREFIX.html dashboard covering them all; -stats-json writes a single
// machine-readable document combining every report's table, notes, stats
// snapshots, and bottleneck verdicts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"xenic/internal/cliflags"
	"xenic/internal/harness"
	"xenic/internal/harness/wallbench"
	"xenic/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "reduced populations and windows (seconds instead of minutes)")
	seed := cliflags.Seed(flag.CommandLine)
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "experiment cells run concurrently (1 = serial; results are identical at any -j)")
	list := flag.Bool("list", false, "list experiments and exit")
	statsOut := cliflags.Stats(flag.CommandLine, "write per-run stats-registry snapshots to this JSON file")
	jsonOut := flag.String("json", "", "write machine-readable reports (typed cells) to this JSON file")
	statsJSONOut := flag.String("stats-json", "", "write one machine-readable document (reports + stats snapshots + bottleneck verdicts) to this JSON file")
	tel := cliflags.AddTelemetry(flag.CommandLine, "collect time-resolved telemetry; write PREFIX-<id>.csv/.json per experiment and a PREFIX.html dashboard")
	ol := cliflags.AddOpenLoop(flag.CommandLine)
	sched := cliflags.AddSched(flag.CommandLine)
	wallOut := flag.String("wallbench", "", "time the harness itself (wall seconds, cells/sec, peak RSS, engine allocs/op) and write the result to this JSON file")
	wallTel := flag.Bool("wallbench-telemetry", false, "with -wallbench: run every experiment with a telemetry collector attached (times the sampling overhead; series are discarded)")
	baselinePath := flag.String("baseline", "", "with -wallbench: compare against this committed baseline, exit nonzero if cells/sec regresses beyond -baseline-frac or a hot path allocates")
	baseFrac := flag.Float64("baseline-frac", 0.20, "with -baseline: allowed fractional cells/sec regression")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xenic-bench [-quick] [-seed N] [-j N] <experiment-id>... | all\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		for _, e := range harness.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.PaperRef)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 && *wallOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}
	if *wallOut != "" {
		if len(ids) == 0 {
			ids = wallbench.DefaultSweep()
		}
		wopt := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers}
		if *wallTel {
			wopt.Telemetry = harness.NewTelemetryCollector(tel.Interval())
		}
		res, err := wallbench.Run(wopt, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		writeJSON(*wallOut, res)
		fmt.Printf("wallbench: %d cells in %.2fs (%.2f cells/sec, -j %d, telemetry %v), peak RSS %.1f MiB\n",
			res.Cells, res.WallSeconds, res.CellsPerSec, res.Workers, res.Telemetry, float64(res.PeakRSSBytes)/(1<<20))
		for _, e := range res.Engine {
			fmt.Printf("wallbench: %-22s %8.2f ns/op  %d allocs/op  %d B/op\n",
				e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		}
		fmt.Printf("wallbench: mvcc update A/B: events %+.2f%% (off %d, on %d), wall %+.1f%% (off %.2fs, on %.2fs)\n",
			100*(res.MVCC.EventsOverhead-1), res.MVCC.OffEvents, res.MVCC.OnEvents,
			100*(res.MVCC.Overhead-1), res.MVCC.OffSeconds, res.MVCC.OnSeconds)
		if *baselinePath != "" {
			if err := wallbench.Check(res, *baselinePath, *baseFrac); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wallbench: within %.0f%% of baseline %s\n", 100**baseFrac, *baselinePath)
		}
		return
	}

	opt := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers,
		// The open-loop flags parameterize the slo experiment (-arrival,
		// -admit, -sessions, -slo-us); other experiments ignore them.
		SLO: &harness.SLOTuning{Arrival: ol.Arrival, Admit: ol.Admit,
			Sessions: ol.Sessions, SLOUs: ol.SLOUs},
		// The scheduler flags parameterize the contention experiment's
		// scheduler-on cells (-sched-batch-us, -sched-hot-k).
		Sched: &harness.SchedTuning{BatchUs: sched.BatchUs, HotK: sched.HotK}}
	collectStats := *statsOut != "" || *statsJSONOut != ""
	allStats := map[string]any{}
	var reports []*harness.Report
	// Union of every experiment's telemetry, keyed "<id>/<cell label>", for
	// the one-file dashboard covering the whole run.
	allSets := map[string]*telemetry.Set{}
	allVerdicts := map[string]*telemetry.Verdict{}
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		o := opt
		if collectStats {
			o.Stats = harness.NewStatsCollector()
		}
		var telc *harness.TelemetryCollector
		if tel.Enabled() {
			telc = harness.NewTelemetryCollector(tel.Interval())
			o.Telemetry = telc
		}
		start := time.Now()
		fmt.Printf("# %s (%s)\n# paper: %s\n", e.ID, e.Title, e.PaperRef)
		r := e.Run(o)
		if o.Stats != nil {
			r.Stats = o.Stats.Snaps
			allStats[e.ID] = o.Stats.Snaps
		}
		r.Print(os.Stdout)
		reports = append(reports, r)
		if telc != nil {
			writeTelemetry(tel.Out, e.ID, telc)
			verdicts := telc.Verdicts()
			for label, set := range telc.Sets {
				allSets[e.ID+"/"+label] = set
				allVerdicts[e.ID+"/"+label] = verdicts[label]
			}
		}
		fmt.Printf("# wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *statsOut != "" {
		writeJSON(*statsOut, allStats)
	}
	if *jsonOut != "" {
		writeJSON(*jsonOut, reports)
	}
	if *statsJSONOut != "" {
		writeJSON(*statsJSONOut, statsDoc(*quick, *seed, reports))
	}
	if tel.Enabled() && len(allSets) > 0 {
		path := tel.Out + ".html"
		f, err := os.Create(path)
		must(err)
		must(telemetry.WriteHTML(f, "xenic-bench telemetry", allSets, allVerdicts))
		must(f.Close())
		fmt.Printf("# telemetry dashboard: %s (%d cells)\n", path, len(allSets))
	}
}

// writeTelemetry exports one experiment's collected series as long-form CSV
// and as JSON with per-cell bottleneck verdicts.
func writeTelemetry(prefix, id string, c *harness.TelemetryCollector) {
	csvPath := fmt.Sprintf("%s-%s.csv", prefix, id)
	f, err := os.Create(csvPath)
	must(err)
	must(telemetry.WriteMultiCSV(f, c.Sets))
	must(f.Close())
	jsonPath := fmt.Sprintf("%s-%s.json", prefix, id)
	f, err = os.Create(jsonPath)
	must(err)
	must(telemetry.WriteJSON(f, c.Sets, c.Verdicts()))
	must(f.Close())
	labels := make([]string, 0, len(c.Sets))
	for k := range c.Sets {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	fmt.Printf("# telemetry: %d cells -> %s, %s\n", len(labels), csvPath, jsonPath)
}

// runJSON is one experiment's slice of the -stats-json document.
type runJSON struct {
	ID          string                       `json:"id"`
	Title       string                       `json:"title"`
	Header      []string                     `json:"header,omitempty"`
	Cells       [][]harness.Cell             `json:"cells,omitempty"`
	Notes       []string                     `json:"notes,omitempty"`
	Stats       map[string]any               `json:"stats,omitempty"`
	Bottlenecks map[string]telemetry.Verdict `json:"bottlenecks,omitempty"`
}

// benchDoc is the -stats-json document: every report with its typed table,
// stats-registry snapshots, and (when -telemetry ran) bottleneck verdicts.
type benchDoc struct {
	Schema string    `json:"schema"`
	Quick  bool      `json:"quick"`
	Seed   int64     `json:"seed"`
	Runs   []runJSON `json:"runs"`
}

func statsDoc(quick bool, seed int64, reports []*harness.Report) benchDoc {
	doc := benchDoc{Schema: "xenic-bench/1", Quick: quick, Seed: seed}
	for _, r := range reports {
		doc.Runs = append(doc.Runs, runJSON{
			ID: r.ID, Title: r.Title, Header: r.Header, Cells: r.Cells,
			Notes: r.Notes, Stats: r.Stats, Bottlenecks: r.Bottlenecks,
		})
	}
	return doc
}

func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
