// xenic-bench regenerates the paper's tables and figures on the simulated
// testbed.
//
//	xenic-bench -list            # show available experiments
//	xenic-bench table2 fig8c     # run specific experiments
//	xenic-bench -quick all       # fast, reduced-scale pass over everything
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"xenic/internal/harness"
	"xenic/internal/harness/wallbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced populations and windows (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "experiment cells run concurrently (1 = serial; results are identical at any -j)")
	list := flag.Bool("list", false, "list experiments and exit")
	statsOut := flag.String("stats", "", "write per-run stats-registry snapshots to this JSON file")
	jsonOut := flag.String("json", "", "write machine-readable reports (typed cells) to this JSON file")
	wallOut := flag.String("wallbench", "", "time the harness itself (wall seconds, cells/sec, peak RSS, engine allocs/op) and write the result to this JSON file")
	baselinePath := flag.String("baseline", "", "with -wallbench: compare against this committed baseline, exit nonzero if cells/sec regresses >20% or a hot path allocates")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xenic-bench [-quick] [-seed N] [-j N] <experiment-id>... | all\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		for _, e := range harness.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.PaperRef)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 && *wallOut == "" {
		flag.Usage()
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	if *wallOut != "" {
		if len(ids) == 0 {
			ids = wallbench.DefaultSweep()
		}
		res, err := wallbench.Run(harness.Options{Quick: *quick, Seed: *seed, Workers: *workers}, ids)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		writeJSON(*wallOut, res)
		fmt.Printf("wallbench: %d cells in %.2fs (%.2f cells/sec, -j %d), peak RSS %.1f MiB\n",
			res.Cells, res.WallSeconds, res.CellsPerSec, res.Workers, float64(res.PeakRSSBytes)/(1<<20))
		for _, e := range res.Engine {
			fmt.Printf("wallbench: %-22s %8.2f ns/op  %d allocs/op  %d B/op\n",
				e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		}
		if *baselinePath != "" {
			if err := wallbench.Check(res, *baselinePath, 0.20); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wallbench: within 20%% of baseline %s\n", *baselinePath)
		}
		return
	}

	opt := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers}
	allStats := map[string]any{}
	var reports []*harness.Report
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		o := opt
		if *statsOut != "" {
			o.Stats = harness.NewStatsCollector()
		}
		start := time.Now()
		fmt.Printf("# %s (%s)\n# paper: %s\n", e.ID, e.Title, e.PaperRef)
		r := e.Run(o)
		if o.Stats != nil {
			r.Stats = o.Stats.Snaps
			allStats[e.ID] = o.Stats.Snaps
		}
		r.Print(os.Stdout)
		reports = append(reports, r)
		fmt.Printf("# wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *statsOut != "" {
		writeJSON(*statsOut, allStats)
	}
	if *jsonOut != "" {
		writeJSON(*jsonOut, reports)
	}
}

func writeJSON(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
