// xenic-bench regenerates the paper's tables and figures on the simulated
// testbed.
//
//	xenic-bench -list            # show available experiments
//	xenic-bench table2 fig8c     # run specific experiments
//	xenic-bench -quick all       # fast, reduced-scale pass over everything
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xenic/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduced populations and windows (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	statsOut := flag.String("stats", "", "write per-run stats-registry snapshots to this JSON file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xenic-bench [-quick] [-seed N] <experiment-id>... | all\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		for _, e := range harness.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n           paper: %s\n", e.ID, e.Title, e.PaperRef)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	opt := harness.Options{Quick: *quick, Seed: *seed}
	allStats := map[string]any{}
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		o := opt
		if *statsOut != "" {
			o.Stats = harness.NewStatsCollector()
		}
		start := time.Now()
		fmt.Printf("# %s (%s)\n# paper: %s\n", e.ID, e.Title, e.PaperRef)
		r := e.Run(o)
		if o.Stats != nil {
			r.Stats = o.Stats.Snaps
			allStats[e.ID] = o.Stats.Snaps
		}
		r.Print(os.Stdout)
		fmt.Printf("# wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *statsOut != "" {
		b, err := json.MarshalIndent(allStats, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*statsOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
