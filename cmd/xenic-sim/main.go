// xenic-sim runs one ad-hoc cluster configuration and prints its result:
// pick a workload, a system (xenic or a baseline), thread counts, the
// offered-load window, and a measurement duration.
//
//	xenic-sim -workload smallbank -system xenic -window 128 -ms 20
//	xenic-sim -workload tpcc -system drtmh -threads 16 -ms 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xenic"
	"xenic/internal/txnmodel"
)

func main() {
	workload := flag.String("workload", "smallbank", "tpcc | tpcc-neworder | retwis | smallbank")
	system := flag.String("system", "xenic", "xenic | drtmh | drtmh-nc | fasst | drtmr")
	nodes := flag.Int("nodes", 6, "servers")
	replication := flag.Int("replication", 3, "replicas per shard")
	threads := flag.Int("threads", 16, "baseline host threads / Xenic NIC cores")
	app := flag.Int("app", 2, "Xenic host application threads")
	workers := flag.Int("workers", 3, "Xenic host worker threads")
	window := flag.Int("window", 64, "outstanding transactions per node")
	warmMS := flag.Int("warm-ms", 3, "simulated warmup [ms]")
	ms := flag.Int("ms", 10, "simulated measurement window [ms]")
	scale := flag.Float64("scale", 0.1, "population scale vs the paper's sizing")
	seed := flag.Int64("seed", 1, "simulation seed")
	oneLink := flag.Bool("one-link", false, "use one 50Gbps link per server (§5.3)")
	flag.Parse()

	var gen txnmodel.Generator
	switch *workload {
	case "tpcc":
		g := xenic.TPCC()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "tpcc-neworder":
		g := xenic.TPCCNewOrder()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "retwis":
		g := xenic.Retwis()
		g.KeysPerServer = scaleInt(1_000_000, *scale, 1000)
		gen = g
	case "smallbank":
		g := xenic.Smallbank()
		g.AccountsPerServer = scaleInt(2_400_000, *scale, 1000)
		gen = g
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	warm := xenic.Time(*warmMS) * xenic.Millisecond
	win := xenic.Time(*ms) * xenic.Millisecond

	if strings.EqualFold(*system, "xenic") {
		cfg := xenic.DefaultConfig()
		cfg.Nodes = *nodes
		cfg.Replication = *replication
		cfg.AppThreads = *app
		cfg.WorkerThreads = *workers
		cfg.NICCores = *threads
		cfg.Outstanding = max(1, *window / *app)
		cfg.Seed = *seed
		if *oneLink {
			cfg.Params = cfg.Params.OneLink()
		}
		cl, err := xenic.NewCluster(cfg, gen)
		must(err)
		res := cl.Measure(warm, win)
		fmt.Printf("xenic/%s: %s\n", gen.Name(), res)
		return
	}

	var sys xenic.Baseline
	switch strings.ToLower(*system) {
	case "drtmh":
		sys = xenic.DrTMH
	case "drtmh-nc", "nc":
		sys = xenic.DrTMHNC
	case "fasst":
		sys = xenic.FaSST
	case "drtmr":
		sys = xenic.DrTMR
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	cfg := xenic.DefaultBaselineConfig(sys)
	cfg.Nodes = *nodes
	cfg.Replication = *replication
	cfg.Threads = *threads
	cfg.Outstanding = max(1, *window / *threads)
	cfg.Seed = *seed
	if *oneLink {
		cfg.Params = cfg.Params.OneLink()
	}
	cl, err := xenic.NewBaseline(cfg, gen)
	must(err)
	res := cl.Measure(warm, win)
	fmt.Printf("%s/%s: tput=%.0f txn/s/server p50=%v p99=%v aborts=%d\n",
		sys, gen.Name(), res.PerServerTput, res.Median, res.P99, res.Aborts)
}

func scaleInt(v int, scale float64, min int) int {
	out := int(float64(v) * scale)
	if out < min {
		out = min
	}
	return out
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
