// xenic-sim runs one ad-hoc cluster configuration and prints its result:
// pick a workload, a system (xenic or a baseline), thread counts, the
// offered-load window, and a measurement duration.
//
//	xenic-sim -workload smallbank -system xenic -window 128 -ms 20
//	xenic-sim -workload tpcc -system drtmh -threads 16 -ms 10
//
// With -trace the run emits a Chrome trace-event JSON (open in Perfetto or
// chrome://tracing); with -stats it writes a stats-registry snapshot. With
// -telemetry PREFIX the run samples time-resolved series (throughput,
// latency quantiles, occupancies, queue depths) every -telemetry-interval-us
// of simulated time and writes PREFIX.csv, PREFIX.json, and a PREFIX.html
// dashboard, printing the bottleneck analyzer's verdict to stdout.
//
// With -faults the run injects a deterministic fault plan, e.g.
//
//	xenic-sim -faults drop=0.01,dup=0.005,crash=2@4ms -ms 10
//
// A restart=N@TIME event reboots a previously crashed (or evicted) node
// with wiped state: it re-registers with the cluster manager, catches up
// via state transfer, and is re-admitted as a backup, e.g.
//
//	xenic-sim -faults crash=2@2ms,restart=2@6ms -ms 15
//
// Baselines accept only network faults (drop/dup/delay/partition).
//
// With -check the run records every transaction's read and write sets and,
// after draining, verifies the history is serializable (acyclic wr/ww/rw
// dependency graph) and the final state matches the last committed writers;
// a violation prints a witness cycle and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xenic"
	"xenic/internal/telemetry"
	"xenic/internal/txnmodel"
)

func main() {
	workload := flag.String("workload", "smallbank", "tpcc | tpcc-neworder | retwis | smallbank")
	system := flag.String("system", "xenic", "xenic | drtmh | drtmh-nc | fasst | drtmr")
	nodes := flag.Int("nodes", 6, "servers")
	replication := flag.Int("replication", 3, "replicas per shard")
	threads := flag.Int("threads", 16, "baseline host threads / Xenic NIC cores")
	app := flag.Int("app", 2, "Xenic host application threads")
	workers := flag.Int("workers", 3, "Xenic host worker threads")
	window := flag.Int("window", 64, "outstanding transactions per node")
	warmMS := flag.Int("warm-ms", 3, "simulated warmup [ms]")
	ms := flag.Int("ms", 10, "simulated measurement window [ms]")
	scale := flag.Float64("scale", 0.1, "population scale vs the paper's sizing")
	seed := flag.Int64("seed", 1, "simulation seed")
	oneLink := flag.Bool("one-link", false, "use one 50Gbps link per server (§5.3)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run (xenic only)")
	statsOut := flag.String("stats", "", "write a stats-registry JSON snapshot of the run")
	faults := flag.String("faults", "", "fault plan, e.g. drop=0.01,dup=0.005,crash=2@4ms,part=1:2@2ms+1ms")
	telemetryOut := flag.String("telemetry", "", "sample time-resolved telemetry; write PREFIX.csv, PREFIX.json, PREFIX.html and print the bottleneck verdict")
	telIntervalUs := flag.Int("telemetry-interval-us", 100, "telemetry sampling interval in simulated microseconds")
	checkRun := flag.Bool("check", false, "record the transaction history and check serializability + state audits after the run")
	mvcc := flag.Bool("mvcc", false, "enable MVCC snapshot reads: read-only transactions run lock- and validation-free at a consistent timestamp (xenic only)")
	mvccKeep := flag.Int("mvcc-keep", 0, "retained versions per key chain (0 = default 8; with -mvcc)")
	roFrac := flag.Float64("ro-frac", 0, "override the read-only transaction fraction (retwis and smallbank; 0 = the paper's mix)")
	flag.Parse()

	var plan *xenic.FaultPlan
	if *faults != "" {
		var err error
		plan, err = xenic.ParseFaultPlan(*faults)
		must(err)
	}

	var gen txnmodel.Generator
	switch *workload {
	case "tpcc":
		g := xenic.TPCC()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "tpcc-neworder":
		g := xenic.TPCCNewOrder()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "retwis":
		g := xenic.Retwis()
		g.KeysPerServer = scaleInt(1_000_000, *scale, 1000)
		g.ReadOnlyFrac = *roFrac
		gen = g
	case "smallbank":
		g := xenic.Smallbank()
		g.AccountsPerServer = scaleInt(2_400_000, *scale, 1000)
		g.ReadOnlyFrac = *roFrac
		gen = g
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	warm := xenic.Time(*warmMS) * xenic.Millisecond
	win := xenic.Time(*ms) * xenic.Millisecond
	telInterval := xenic.Time(*telIntervalUs) * xenic.Microsecond

	var hist *xenic.History
	if *checkRun {
		hist = xenic.NewHistory()
	}

	if strings.EqualFold(*system, "xenic") {
		cfg := xenic.DefaultConfig()
		cfg.Nodes = *nodes
		cfg.Replication = *replication
		cfg.AppThreads = *app
		cfg.WorkerThreads = *workers
		cfg.NICCores = *threads
		cfg.Outstanding = max(1, *window / *app)
		cfg.Seed = *seed
		cfg.Faults = plan
		cfg.MVCC = *mvcc
		cfg.MVCCKeep = *mvccKeep
		if *oneLink {
			cfg.Params = cfg.Params.OneLink()
		}
		cl, err := xenic.NewCluster(cfg, gen)
		must(err)
		var tr *xenic.Tracer
		if *traceOut != "" {
			tr = xenic.NewTracer()
			cl.SetTracer(tr)
		}
		var reg *xenic.StatsRegistry
		if *statsOut != "" {
			reg = xenic.NewStatsRegistry()
			cl.RegisterMetrics(reg)
		}
		if hist != nil {
			cl.SetHistory(hist)
		}
		var tel *xenic.Telemetry
		if *telemetryOut != "" {
			tel = xenic.NewTelemetry(telInterval)
			cl.SetTelemetry(tel)
		}
		res := cl.Measure(warm, win)
		fmt.Printf("xenic/%s: %s\n", gen.Name(), res)
		writeTrace(*traceOut, tr)
		writeStats(*statsOut, reg)
		writeTelemetry(*telemetryOut, "xenic/"+gen.Name(), tel)
		checkHistory(cl, hist)
		return
	}

	var sys xenic.Baseline
	switch strings.ToLower(*system) {
	case "drtmh":
		sys = xenic.DrTMH
	case "drtmh-nc", "nc":
		sys = xenic.DrTMHNC
	case "fasst":
		sys = xenic.FaSST
	case "drtmr":
		sys = xenic.DrTMR
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	cfg := xenic.DefaultBaselineConfig(sys)
	cfg.Nodes = *nodes
	cfg.Replication = *replication
	cfg.Threads = *threads
	cfg.Outstanding = max(1, *window / *threads)
	cfg.Seed = *seed
	cfg.Faults = plan
	if *oneLink {
		cfg.Params = cfg.Params.OneLink()
	}
	cl, err := xenic.NewBaseline(cfg, gen)
	must(err)
	if *traceOut != "" {
		fmt.Fprintln(os.Stderr, "xenic-sim: -trace is only supported for -system xenic; ignoring")
	}
	if *mvcc {
		fmt.Fprintln(os.Stderr, "xenic-sim: -mvcc is only supported for -system xenic; ignoring")
	}
	var reg *xenic.StatsRegistry
	if *statsOut != "" {
		reg = xenic.NewStatsRegistry()
		cl.RegisterMetrics(reg)
	}
	if hist != nil {
		cl.SetHistory(hist)
	}
	var tel *xenic.Telemetry
	if *telemetryOut != "" {
		tel = xenic.NewTelemetry(telInterval)
		cl.SetTelemetry(tel)
	}
	res := cl.Measure(warm, win)
	fmt.Printf("%s/%s: %s\n", sys, gen.Name(), res)
	writeStats(*statsOut, reg)
	writeTelemetry(*telemetryOut, fmt.Sprintf("%s/%s", sys, gen.Name()), tel)
	checkHistory(cl, hist)
}

// checkHistory drains the system, runs the serializability checker over the
// recorded history, and audits the final state. Any violation exits 1.
func checkHistory(s xenic.System, h *xenic.History) {
	if h == nil {
		return
	}
	if !s.Drain(500 * xenic.Millisecond) {
		fmt.Fprintln(os.Stderr, "xenic-sim: -check: system did not drain")
		os.Exit(1)
	}
	rep := h.Check()
	fmt.Printf("check: %s\n", rep)
	if err := s.AuditHistory(); err != nil {
		fmt.Fprintf(os.Stderr, "xenic-sim: -check: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("audit: clean")
	if !rep.Ok() {
		os.Exit(1)
	}
}

// writeTrace dumps tr as Chrome trace-event JSON to path (no-op when unset).
func writeTrace(path string, tr *xenic.Tracer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	must(err)
	must(tr.WriteJSON(f))
	must(f.Close())
}

// writeTelemetry stops the sampler and writes the run's series as
// PREFIX.csv, PREFIX.json, and a PREFIX.html dashboard, printing the
// bottleneck analyzer's verdict (no-op when -telemetry is unset). Called
// right after Measure so a -check drain doesn't pad the series with idle
// samples.
func writeTelemetry(prefix, label string, tel *xenic.Telemetry) {
	if prefix == "" || tel == nil {
		return
	}
	tel.Stop()
	set := tel.Set()
	v := telemetry.Analyze(set)
	sets := map[string]*telemetry.Set{label: set}
	verdicts := map[string]*telemetry.Verdict{label: &v}

	f, err := os.Create(prefix + ".csv")
	must(err)
	must(telemetry.WriteCSV(f, set))
	must(f.Close())
	f, err = os.Create(prefix + ".json")
	must(err)
	must(telemetry.WriteJSON(f, sets, verdicts))
	must(f.Close())
	f, err = os.Create(prefix + ".html")
	must(err)
	must(telemetry.WriteHTML(f, "xenic-sim "+label, sets, verdicts))
	must(f.Close())
	fmt.Printf("bottleneck: %s\n", v.String())
	fmt.Printf("telemetry: %d samples, %d series -> %s.{csv,json,html}\n",
		len(set.TimesUs), len(set.Series), prefix)
}

// writeStats dumps the registry snapshot as JSON to path (no-op when unset).
func writeStats(path string, reg *xenic.StatsRegistry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	must(err)
	must(reg.WriteJSON(f))
	must(f.Close())
}

func scaleInt(v int, scale float64, min int) int {
	out := int(float64(v) * scale)
	if out < min {
		out = min
	}
	return out
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
