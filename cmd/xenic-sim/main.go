// xenic-sim runs one ad-hoc cluster configuration and prints its result:
// pick a workload, a system (xenic or a baseline), thread counts, the
// offered-load window, and a measurement duration.
//
//	xenic-sim -workload smallbank -system xenic -window 128 -ms 20
//	xenic-sim -workload tpcc -system drtmh -threads 16 -ms 10
//
// With -trace the run emits a Chrome trace-event JSON (open in Perfetto or
// chrome://tracing); with -stats it writes a stats-registry snapshot. With
// -telemetry PREFIX the run samples time-resolved series (throughput,
// latency quantiles, occupancies, queue depths) every -telemetry-interval-us
// of simulated time and writes PREFIX.csv, PREFIX.json, and a PREFIX.html
// dashboard, printing the bottleneck analyzer's verdict to stdout.
//
// With -openloop RATE the run is driven open-loop instead of closed-loop:
// transactions arrive at RATE txns/sec cluster-wide following the -arrival
// process (poisson or pareto), issued by -sessions client sessions
// (optionally churning with -session-life-us, split over -tenants streams),
// gated by the -admit admission policy. The run reports offered vs.
// admitted vs. completed rates and client-observed latency, and with
// -slo-us prints whether p99 met the SLO, e.g.
//
//	xenic-sim -openloop 2e6 -admit queue:64 -slo-us 100 -ms 10
//
// With -faults the run injects a deterministic fault plan, e.g.
//
//	xenic-sim -faults drop=0.01,dup=0.005,crash=2@4ms -ms 10
//
// A restart=N@TIME event reboots a previously crashed (or evicted) node
// with wiped state: it re-registers with the cluster manager, catches up
// via state transfer, and is re-admitted as a backup, e.g.
//
//	xenic-sim -faults crash=2@2ms,restart=2@6ms -ms 15
//
// Baselines accept only network faults (drop/dup/delay/partition).
//
// With -check the run records every transaction's read and write sets and,
// after draining, verifies the history is serializable (acyclic wr/ww/rw
// dependency graph) and the final state matches the last committed writers;
// a violation prints a witness cycle and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xenic"
	"xenic/internal/cliflags"
	"xenic/internal/telemetry"
	"xenic/internal/txnmodel"
)

func main() {
	workload := flag.String("workload", "smallbank", "tpcc | tpcc-neworder | retwis | smallbank")
	system := flag.String("system", "xenic", "xenic | drtmh | drtmh-nc | fasst | drtmr")
	nodes := flag.Int("nodes", 6, "servers")
	replication := flag.Int("replication", 3, "replicas per shard")
	threads := flag.Int("threads", 16, "baseline host threads / Xenic NIC cores")
	app := flag.Int("app", 2, "Xenic host application threads")
	workers := flag.Int("workers", 3, "Xenic host worker threads")
	window := flag.Int("window", 64, "outstanding transactions per node")
	warmMS := flag.Int("warm-ms", 3, "simulated warmup [ms]")
	ms := flag.Int("ms", 10, "simulated measurement window [ms]")
	scale := flag.Float64("scale", 0.1, "population scale vs the paper's sizing")
	seed := cliflags.Seed(flag.CommandLine)
	oneLink := flag.Bool("one-link", false, "use one 50Gbps link per server (§5.3)")
	statsOut := cliflags.Stats(flag.CommandLine, "write a stats-registry JSON snapshot of the run")
	obs := cliflags.AddSimObserve(flag.CommandLine)
	tel := cliflags.AddTelemetry(flag.CommandLine, "sample time-resolved telemetry; write PREFIX.csv, PREFIX.json, PREFIX.html and print the bottleneck verdict")
	ol := cliflags.AddOpenLoop(flag.CommandLine)
	roFrac := flag.Float64("ro-frac", 0, "override the read-only transaction fraction (retwis and smallbank; 0 = the paper's mix)")
	alpha := flag.Float64("alpha", 0, "override the retwis Zipf skew alpha (0 = the paper's 0.5)")
	hotFrac := flag.Float64("hot-frac", 0, "override the smallbank hot-account fraction (0 = the paper's 0.04)")
	hotProb := flag.Float64("hot-prob", 0, "override the smallbank hot-access probability (0 = the paper's 0.9)")
	sched := cliflags.AddSched(flag.CommandLine)
	flag.Parse()

	var plan *xenic.FaultPlan
	if obs.Faults != "" {
		var err error
		plan, err = xenic.ParseFaultPlan(obs.Faults)
		must(err)
	}

	var gen txnmodel.Generator
	switch *workload {
	case "tpcc":
		g := xenic.TPCC()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "tpcc-neworder":
		g := xenic.TPCCNewOrder()
		g.WarehousesPerServer = scaleInt(72, *scale, 2)
		gen = g
	case "retwis":
		g := xenic.Retwis()
		g.KeysPerServer = scaleInt(1_000_000, *scale, 1000)
		g.ReadOnlyFrac = *roFrac
		if *alpha > 0 {
			g.Alpha = *alpha
		}
		gen = g
	case "smallbank":
		g := xenic.Smallbank()
		g.AccountsPerServer = scaleInt(2_400_000, *scale, 1000)
		g.ReadOnlyFrac = *roFrac
		if *hotFrac > 0 {
			g.HotFrac = *hotFrac
		}
		if *hotProb > 0 {
			g.HotProb = *hotProb
		}
		gen = g
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	warm := xenic.Time(*warmMS) * xenic.Millisecond
	win := xenic.Time(*ms) * xenic.Millisecond

	var hist *xenic.History
	if obs.Check {
		hist = xenic.NewHistory()
	}

	// Observers and the load source attach at construction time via Options
	// (the handles stay local for the export helpers below).
	var opts []xenic.Option
	var tr *xenic.Tracer
	var reg *xenic.StatsRegistry
	var telS *xenic.Telemetry
	if *statsOut != "" {
		reg = xenic.NewStatsRegistry()
		opts = append(opts, xenic.WithStats(reg))
	}
	if hist != nil {
		opts = append(opts, xenic.WithHistory(hist))
	}
	if tel.Enabled() {
		telS = xenic.NewTelemetry(tel.Interval())
		opts = append(opts, xenic.WithTelemetry(telS))
	}
	src, err := ol.Source(*seed)
	must(err)
	if src != nil {
		opts = append(opts, xenic.WithLoad(src))
	}

	if strings.EqualFold(*system, "xenic") {
		cfg := xenic.DefaultConfig()
		cfg.Nodes = *nodes
		cfg.Replication = *replication
		cfg.AppThreads = *app
		cfg.WorkerThreads = *workers
		cfg.NICCores = *threads
		cfg.Outstanding = max(1, *window / *app)
		cfg.Seed = *seed
		cfg.Faults = plan
		cfg.MVCC = obs.MVCC
		cfg.MVCCKeep = obs.MVCCKeep
		cfg.Sched = sched.Enabled
		cfg.SchedBatchUs = sched.BatchUs
		cfg.SchedHotK = sched.HotK
		if *oneLink {
			cfg.Params = cfg.Params.OneLink()
		}
		if obs.Trace != "" {
			tr = xenic.NewTracer()
			opts = append(opts, xenic.WithTracer(tr))
		}
		cl, err := xenic.NewCluster(cfg, gen, opts...)
		must(err)
		res, s0, s1 := measure(cl, warm, win, ol)
		fmt.Printf("xenic/%s: %s\n", gen.Name(), res)
		printOpenLoad(ol, win, s0, s1)
		writeTrace(obs.Trace, tr)
		writeStats(*statsOut, reg)
		writeTelemetry(tel.Out, "xenic/"+gen.Name(), telS)
		checkHistory(cl, hist)
		return
	}

	var sys xenic.Baseline
	switch strings.ToLower(*system) {
	case "drtmh":
		sys = xenic.DrTMH
	case "drtmh-nc", "nc":
		sys = xenic.DrTMHNC
	case "fasst":
		sys = xenic.FaSST
	case "drtmr":
		sys = xenic.DrTMR
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}
	cfg := xenic.DefaultBaselineConfig(sys)
	cfg.Nodes = *nodes
	cfg.Replication = *replication
	cfg.Threads = *threads
	cfg.Outstanding = max(1, *window / *threads)
	cfg.Seed = *seed
	cfg.Faults = plan
	if *oneLink {
		cfg.Params = cfg.Params.OneLink()
	}
	if obs.Trace != "" {
		fmt.Fprintln(os.Stderr, "xenic-sim: -trace is only supported for -system xenic; ignoring")
	}
	if obs.MVCC {
		fmt.Fprintln(os.Stderr, "xenic-sim: -mvcc is only supported for -system xenic; ignoring")
	}
	if sched.Enabled {
		fmt.Fprintln(os.Stderr, "xenic-sim: -sched is only supported for -system xenic; ignoring")
	}
	cl, err := xenic.NewBaseline(cfg, gen, opts...)
	must(err)
	res, s0, s1 := measure(cl, warm, win, ol)
	fmt.Printf("%s/%s: %s\n", sys, gen.Name(), res)
	printOpenLoad(ol, win, s0, s1)
	writeStats(*statsOut, reg)
	writeTelemetry(tel.Out, fmt.Sprintf("%s/%s", sys, gen.Name()), telS)
	checkHistory(cl, hist)
}

// measure runs the warmup + window. Closed-loop runs take the plain Measure
// path (byte-identical to always); open-loop runs snapshot the source's
// counters around the window so offered/admitted/completed rates cover
// exactly the measured interval.
func measure(s xenic.System, warm, win xenic.Time, ol *cliflags.OpenLoop) (xenic.Result, xenic.LoadStats, xenic.LoadStats) {
	if !ol.Enabled() {
		return s.Measure(warm, win), xenic.LoadStats{}, xenic.LoadStats{}
	}
	s.Start()
	s.Run(warm)
	s0 := s.OfferedLoad()
	res := s.Measure(0, win)
	s1 := s.OfferedLoad()
	return res, s0, s1
}

// printOpenLoad reports the open-loop window: admission-control rates,
// session pool, client-observed latency, and the -slo-us verdict.
func printOpenLoad(ol *cliflags.OpenLoop, win xenic.Time, s0, s1 xenic.LoadStats) {
	if !ol.Enabled() {
		return
	}
	sec := win.Seconds()
	rate := func(a, b int64) float64 { return float64(b-a) / sec }
	fmt.Printf("openloop: offered=%.0f/s admitted=%.0f/s rejected=%.0f/s completed=%.0f/s sessions=%d inflight=%d queue=%d\n",
		rate(s0.Offered, s1.Offered), rate(s0.Admitted, s1.Admitted),
		rate(s0.Rejected, s1.Rejected), rate(s0.Completed, s1.Completed),
		s1.ActiveSessions, s1.InFlight, s1.QueueLen)
	fmt.Printf("openloop: client p50=%v p99=%v queue-delay p99=%v\n",
		s1.LatencyP50, s1.LatencyP99, s1.QueueDelayP99)
	if slo := ol.SLO(); slo > 0 {
		verdict := "met"
		if s1.LatencyP99 > slo {
			verdict = "EXCEEDED"
		}
		fmt.Printf("openloop: slo p99<=%v: %s (p99=%v)\n", slo, verdict, s1.LatencyP99)
	}
}

// checkHistory drains the system, runs the serializability checker over the
// recorded history, and audits the final state. Any violation exits 1.
func checkHistory(s xenic.System, h *xenic.History) {
	if h == nil {
		return
	}
	if !s.Drain(500 * xenic.Millisecond) {
		fmt.Fprintln(os.Stderr, "xenic-sim: -check: system did not drain")
		os.Exit(1)
	}
	rep := h.Check()
	fmt.Printf("check: %s\n", rep)
	if err := s.AuditHistory(); err != nil {
		fmt.Fprintf(os.Stderr, "xenic-sim: -check: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("audit: clean")
	if !rep.Ok() {
		os.Exit(1)
	}
}

// writeTrace dumps tr as Chrome trace-event JSON to path (no-op when unset).
func writeTrace(path string, tr *xenic.Tracer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	must(err)
	must(tr.WriteJSON(f))
	must(f.Close())
}

// writeTelemetry stops the sampler and writes the run's series as
// PREFIX.csv, PREFIX.json, and a PREFIX.html dashboard, printing the
// bottleneck analyzer's verdict (no-op when -telemetry is unset). Called
// right after Measure so a -check drain doesn't pad the series with idle
// samples.
func writeTelemetry(prefix, label string, tel *xenic.Telemetry) {
	if prefix == "" || tel == nil {
		return
	}
	tel.Stop()
	set := tel.Set()
	v := telemetry.Analyze(set)
	sets := map[string]*telemetry.Set{label: set}
	verdicts := map[string]*telemetry.Verdict{label: &v}

	f, err := os.Create(prefix + ".csv")
	must(err)
	must(telemetry.WriteCSV(f, set))
	must(f.Close())
	f, err = os.Create(prefix + ".json")
	must(err)
	must(telemetry.WriteJSON(f, sets, verdicts))
	must(f.Close())
	f, err = os.Create(prefix + ".html")
	must(err)
	must(telemetry.WriteHTML(f, "xenic-sim "+label, sets, verdicts))
	must(f.Close())
	fmt.Printf("bottleneck: %s\n", v.String())
	fmt.Printf("telemetry: %d samples, %d series -> %s.{csv,json,html}\n",
		len(set.TimesUs), len(set.Series), prefix)
}

// writeStats dumps the registry snapshot as JSON to path (no-op when unset).
func writeStats(path string, reg *xenic.StatsRegistry) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	must(err)
	must(reg.WriteJSON(f))
	must(f.Close())
}

func scaleInt(v int, scale float64, min int) int {
	out := int(float64(v) * scale)
	if out < min {
		out = min
	}
	return out
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
