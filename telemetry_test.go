package xenic_test

import (
	"bytes"
	"fmt"
	"testing"

	"xenic"
	"xenic/internal/telemetry"
)

// smallCfg is a small Xenic cluster configuration shared by the telemetry
// integration tests.
func smallCfg(seed int64) xenic.Config {
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads = 2
	cfg.WorkerThreads = 2
	cfg.NICCores = 4
	cfg.Outstanding = 8
	cfg.Seed = seed
	return cfg
}

// TestTelemetryChargeFree is the overhead rule: a run with a sampler
// attached must report exactly the same measurement as one without — the
// probes are read-only and the ticker never perturbs the transaction
// schedule.
func TestTelemetryChargeFree(t *testing.T) {
	run := func(withTel bool) (xenic.Result, int) {
		var opts []xenic.Option
		var tel *xenic.Telemetry
		if withTel {
			tel = xenic.NewTelemetry(100 * xenic.Microsecond)
			opts = append(opts, xenic.WithTelemetry(tel))
		}
		cl, err := xenic.NewCluster(smallCfg(1), &tinyWorkload{keys: 4000}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res := cl.Measure(1*xenic.Millisecond, 3*xenic.Millisecond)
		samples := 0
		if tel != nil {
			tel.Stop()
			samples = len(tel.Set().TimesUs)
		}
		return res, samples
	}
	plain, _ := run(false)
	sampled, n := run(true)
	if fmt.Sprintf("%+v", plain) != fmt.Sprintf("%+v", sampled) {
		t.Fatalf("telemetry changed the measurement:\n  off: %+v\n  on:  %+v", plain, sampled)
	}
	if n == 0 {
		t.Fatal("sampler attached but recorded no samples")
	}
}

// TestTelemetryDeterministic runs two identically-seeded clusters with
// samplers attached and expects byte-identical CSV and JSON exports.
func TestTelemetryDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		tel := xenic.NewTelemetry(100 * xenic.Microsecond)
		cl, err := xenic.NewCluster(smallCfg(3), &tinyWorkload{keys: 4000}, xenic.WithTelemetry(tel))
		if err != nil {
			t.Fatal(err)
		}
		cl.Measure(1*xenic.Millisecond, 3*xenic.Millisecond)
		tel.Stop()
		set := tel.Set()
		var csv, js bytes.Buffer
		if err := telemetry.WriteCSV(&csv, set); err != nil {
			t.Fatal(err)
		}
		v := telemetry.Analyze(set)
		err = telemetry.WriteJSON(&js, map[string]*telemetry.Set{"run": set},
			map[string]*telemetry.Verdict{"run": &v})
		if err != nil {
			t.Fatal(err)
		}
		return csv.Bytes(), js.Bytes()
	}
	csvA, jsA := run()
	csvB, jsB := run()
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("CSV exports differ between identically-seeded runs")
	}
	if !bytes.Equal(jsA, jsB) {
		t.Fatal("JSON exports differ between identically-seeded runs")
	}
	if len(csvA) == 0 {
		t.Fatal("empty CSV export")
	}
}

// TestTelemetryBaseline exercises the baseline cluster's probe set.
func TestTelemetryBaseline(t *testing.T) {
	cfg := xenic.DefaultBaselineConfig(xenic.DrTMH)
	cfg.Nodes = 4
	cfg.Threads = 4
	cfg.Outstanding = 4
	tel := xenic.NewTelemetry(100 * xenic.Microsecond)
	cl, err := xenic.NewBaseline(cfg, &tinyWorkload{keys: 4000}, xenic.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	cl.Measure(1*xenic.Millisecond, 2*xenic.Millisecond)
	tel.Stop()
	set := tel.Set()
	if len(set.TimesUs) == 0 || len(set.Series) == 0 {
		t.Fatal("baseline sampler recorded nothing")
	}
	found := false
	for _, s := range set.Series {
		if s.Name == "node0.txn.commit_rate" {
			found = true
			sum := 0.0
			for _, v := range s.Vals {
				sum += v
			}
			if sum <= 0 {
				t.Fatal("baseline commit rate series is all zero")
			}
		}
	}
	if !found {
		t.Fatal("node0.txn.commit_rate series missing from baseline sampler")
	}
}
